(** Jacobi iteration for the discrete Laplacian (paper §III, Figure 12).

    The grid is [(n+2) x (n+2)] doubles with a fixed boundary; interior
    rows are block-partitioned over the threads. Each sweep updates every
    interior point from its four neighbours, accumulates a residual into a
    mutex-protected global, and — exactly as in the paper — performs three
    barrier synchronizations per outer iteration (sweep complete, residual
    merged, residual reset/swap). The memory-access pattern is the
    nearest-neighbour stencil the paper calls representative: each thread's
    boundary rows are read by its neighbours, so block boundaries exhibit
    modest false sharing at line granularity. *)

type params = {
  n : int;  (** Interior points per dimension. *)
  iters : int;
  boundary : float;
}

let default_params = { n = 256; iters = 20; boundary = 1.0 }

type result = {
  params : params;
  threads : int;
  wall_ns : int;
  compute_ns : int array;
  sync_ns : int array;
  checksum : float;  (** Row-major sum of the full grid after [iters]. *)
  residual : float;  (** Global residual of the final sweep. *)
}

(* Sequential reference producing the exact same floating-point results
   (cell updates within a Jacobi sweep are order-independent, and the
   checksum is accumulated in the same row-major order). *)
let reference (p : params) =
  let w = p.n + 2 in
  let u = Array.make (w * w) 0.0 in
  let v = Array.make (w * w) 0.0 in
  for i = 0 to w - 1 do
    for j = 0 to w - 1 do
      if i = 0 || j = 0 || i = w - 1 || j = w - 1 then begin
        u.((i * w) + j) <- p.boundary;
        v.((i * w) + j) <- p.boundary
      end
    done
  done;
  let cur = ref u and nxt = ref v in
  let residual = ref 0.0 in
  for _it = 0 to p.iters - 1 do
    residual := 0.0;
    let c = !cur and x = !nxt in
    for i = 1 to p.n do
      for j = 1 to p.n do
        let nv =
          0.25
          *. (c.(((i - 1) * w) + j) +. c.(((i + 1) * w) + j)
              +. c.((i * w) + j - 1) +. c.((i * w) + j + 1))
        in
        x.((i * w) + j) <- nv;
        residual := !residual +. Float.abs (nv -. c.((i * w) + j))
      done
    done;
    let tmp = !cur in
    cur := !nxt;
    nxt := tmp
  done;
  let sum = ref 0.0 in
  Array.iter (fun x -> sum := !sum +. x) !cur;
  (!sum, !residual)

(* Rows [1..n] split into contiguous blocks, remainder spread one row at a
   time over the leading threads. *)
let row_range ~n ~threads ~tid =
  let per = n / threads and extra = n mod threads in
  let lo = 1 + (tid * per) + min tid extra in
  let hi = lo + per + (if tid < extra then 1 else 0) in
  (lo, hi)  (* [lo, hi) *)

module Make (B : Backend_sig.S) = struct
  let run ~threads (p : params) =
    if threads <= 0 then invalid_arg "Jacobi.run: threads";
    if p.n < threads then invalid_arg "Jacobi.run: grid smaller than threads";
    let sys = B.create ~threads in
    let m = B.mutex sys in
    let bar = B.barrier sys ~parties:threads in
    let w = p.n + 2 in
    let grid_bytes = w * w * 8 in
    let u_addr = ref 0 and v_addr = ref 0 and gres_addr = ref 0 in
    let compute = Array.make threads 0 in
    let sync = Array.make threads 0 in
    let checksum = ref nan and residual = ref nan in
    let body t =
      let tid = B.thread_id t in
      if tid = 0 then begin
        u_addr := B.malloc t ~bytes:grid_bytes;
        v_addr := B.malloc t ~bytes:grid_bytes;
        (* Lock-protected scalar on its own line (see Kernel_util). *)
        gres_addr :=
          B.malloc t ~bytes:(Kernel_util.isolated_size 8)
          + Kernel_util.isolation_pad;
        B.write_f64 t !gres_addr 0.0
      end;
      B.barrier_wait t bar;
      let lo, hi = row_range ~n:p.n ~threads ~tid in
      let cell base i j = base + (((i * w) + j) * 8) in
      (* Initialize owned rows (first touch); thread 0 also writes the top
         and bottom boundary rows. *)
      let init_row base i =
        for j = 0 to w - 1 do
          let v =
            if i = 0 || j = 0 || i = w - 1 || j = w - 1 then p.boundary
            else 0.0
          in
          B.write_f64 t (cell base i j) v
        done
      in
      List.iter
        (fun base ->
           for i = lo to hi - 1 do
             init_row base i
           done;
           if tid = 0 then begin
             init_row base 0;
             init_row base (w - 1)
           end)
        [ !u_addr; !v_addr ];
      B.barrier_wait t bar;
      let cur = ref !u_addr and nxt = ref !v_addr in
      for _it = 0 to p.iters - 1 do
        let local = ref 0.0 in
        for i = lo to hi - 1 do
          for j = 1 to p.n do
            let c = !cur in
            let nv =
              0.25
              *. (B.read_f64 t (cell c (i - 1) j)
                  +. B.read_f64 t (cell c (i + 1) j)
                  +. B.read_f64 t (cell c i (j - 1))
                  +. B.read_f64 t (cell c i (j + 1)))
            in
            B.write_f64 t (cell !nxt i j) nv;
            local := !local +. Float.abs (nv -. B.read_f64 t (cell c i j))
          done;
          B.charge_flops t (6 * p.n)
        done;
        B.barrier_wait t bar;
        B.lock t m;
        B.write_f64 t !gres_addr (B.read_f64 t !gres_addr +. !local);
        B.unlock t m;
        B.barrier_wait t bar;
        if tid = 0 then begin
          (* Lock-protected data: read and reset under the mutex. *)
          B.lock t m;
          residual := B.read_f64 t !gres_addr;
          B.write_f64 t !gres_addr 0.0;
          B.unlock t m
        end;
        let tmp = !cur in
        cur := !nxt;
        nxt := tmp;
        B.barrier_wait t bar
      done;
      compute.(tid) <- B.compute_ns t;
      sync.(tid) <- B.sync_ns t;
      if tid = 0 then begin
        let sum = ref 0.0 in
        for i = 0 to w - 1 do
          for j = 0 to w - 1 do
            sum := !sum +. B.read_f64 t (cell !cur i j)
          done
        done;
        checksum := !sum
      end
    in
    for _i = 1 to threads do
      B.spawn sys body
    done;
    B.run sys;
    { params = p;
      threads;
      wall_ns = B.elapsed_ns sys;
      compute_ns = compute;
      sync_ns = sync;
      checksum = !checksum;
      residual = !residual }
end

let run (backend : Backend_sig.backend) ~threads p =
  let module B = (val backend) in
  let module M = Make (B) in
  M.run ~threads p
