(** Molecular dynamics: velocity-Verlet n-body (paper §III, Figure 13).

    Particles live in 3-D; every step computes O(n) pairwise interactions
    per particle (a softened inverse-square attraction), so computation per
    particle grows with n while each thread writes only its own slice of
    the position/velocity/acceleration arrays. Kinetic and potential
    energies accumulate under a mutex and, as in the paper, each step
    performs three barrier synchronizations (positions published, forces +
    energies merged, energies recorded/reset). *)

type params = {
  n : int;  (** Particle count. *)
  steps : int;
  dt : float;
  softening : float;
}

let default_params = { n = 192; steps = 10; dt = 0.001; softening = 0.05 }

type result = {
  params : params;
  threads : int;
  wall_ns : int;
  compute_ns : int array;
  sync_ns : int array;
  pos_checksum : float;
  energies : (float * float) list;  (** (kinetic, potential) per step. *)
}

(* Deterministic initial lattice: particles on a cubic grid with a slight
   deterministic perturbation, zero initial velocity. *)
let initial_position ~n:_ i d =
  let side = 8 in
  let x = i mod side and y = i / side mod side and z = i / (side * side) in
  let coord = [| float_of_int x; float_of_int y; float_of_int z |].(d) in
  coord +. (0.01 *. float_of_int (((i * 31) + (d * 17)) mod 7))

(* Force on particle [i]: softened gravity toward every other particle.
   Positions come from a plain array: the parallel kernel snapshots the
   shared position array into a private buffer once per step (the standard
   DSM idiom — pull shared data once, then compute out of private memory),
   so the O(n) inner loop runs on local data whose access cost is charged
   via [charge_mem_ops]. Returns the acceleration components and this
   particle's potential contribution (each pair counted once from the
   lower index). *)
let accel_of ~n ~softening (pos : float array) i =
  let pos_at i d = Array.unsafe_get pos ((i * 3) + d) in
  let ax = ref 0.0 and ay = ref 0.0 and az = ref 0.0 in
  let pe = ref 0.0 in
  let xi = pos_at i 0 and yi = pos_at i 1 and zi = pos_at i 2 in
  for j = 0 to n - 1 do
    if j <> i then begin
      let dx = pos_at j 0 -. xi
      and dy = pos_at j 1 -. yi
      and dz = pos_at j 2 -. zi in
      let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. softening in
      let inv_r = 1.0 /. sqrt r2 in
      let inv_r3 = inv_r /. r2 in
      ax := !ax +. (dx *. inv_r3);
      ay := !ay +. (dy *. inv_r3);
      az := !az +. (dz *. inv_r3);
      if j > i then pe := !pe -. inv_r
    end
  done;
  ((!ax, !ay, !az), !pe)

let flops_per_pair = 16
let mem_ops_per_pair = 3

(* Contiguous partition of [0, n). *)
let slice ~n ~threads ~tid =
  let per = n / threads and extra = n mod threads in
  let lo = (tid * per) + min tid extra in
  (lo, lo + per + (if tid < extra then 1 else 0))

(* Sequential reference with identical arithmetic and iteration order. *)
let reference (p : params) =
  let pos = Array.init (p.n * 3) (fun k -> initial_position ~n:p.n (k / 3) (k mod 3)) in
  let vel = Array.make (p.n * 3) 0.0 in
  let acc = Array.make (p.n * 3) 0.0 in
  let energies = ref [] in
  for i = 0 to p.n - 1 do
    let (ax, ay, az), _ = accel_of ~n:p.n ~softening:p.softening pos i in
    acc.(i * 3) <- ax;
    acc.((i * 3) + 1) <- ay;
    acc.((i * 3) + 2) <- az
  done;
  for _s = 0 to p.steps - 1 do
    for i = 0 to p.n - 1 do
      for d = 0 to 2 do
        let k = (i * 3) + d in
        pos.(k) <- pos.(k) +. (vel.(k) *. p.dt)
                   +. (0.5 *. acc.(k) *. p.dt *. p.dt)
      done
    done;
    let ke = ref 0.0 and pe = ref 0.0 in
    for i = 0 to p.n - 1 do
      let (ax, ay, az), pei =
        accel_of ~n:p.n ~softening:p.softening pos i
      in
      let upd d nv =
        let k = (i * 3) + d in
        let old_a = acc.(k) in
        acc.(k) <- nv;
        vel.(k) <- vel.(k) +. (0.5 *. (old_a +. nv) *. p.dt);
        ke := !ke +. (0.5 *. vel.(k) *. vel.(k))
      in
      upd 0 ax;
      upd 1 ay;
      upd 2 az;
      pe := !pe +. pei
    done;
    energies := (!ke, !pe) :: !energies
  done;
  let sum = ref 0.0 in
  Array.iter (fun x -> sum := !sum +. x) pos;
  (!sum, List.rev !energies)

module Make (B : Backend_sig.S) = struct
  let run ~threads (p : params) =
    if threads <= 0 then invalid_arg "Md.run: threads";
    if p.n < threads then invalid_arg "Md.run: fewer particles than threads";
    let sys = B.create ~threads in
    let m = B.mutex sys in
    let bar = B.barrier sys ~parties:threads in
    let abytes = p.n * 3 * 8 in
    let pos_a = ref 0 and vel_a = ref 0 and acc_a = ref 0 and en_a = ref 0 in
    let compute = Array.make threads 0 in
    let sync = Array.make threads 0 in
    let pos_checksum = ref nan in
    let energies = ref [] in
    let body t =
      let tid = B.thread_id t in
      if tid = 0 then begin
        pos_a := B.malloc t ~bytes:abytes;
        vel_a := B.malloc t ~bytes:abytes;
        acc_a := B.malloc t ~bytes:abytes;
        (* Lock-protected energy pair on its own line (see Kernel_util). *)
        en_a :=
          B.malloc t ~bytes:(Kernel_util.isolated_size 16)
          + Kernel_util.isolation_pad;
        B.write_f64 t !en_a 0.0;
        B.write_f64 t (!en_a + 8) 0.0
      end;
      B.barrier_wait t bar;
      let lo, hi = slice ~n:p.n ~threads ~tid in
      let idx base i d = base + (((i * 3) + d) * 8) in
      for i = lo to hi - 1 do
        for d = 0 to 2 do
          B.write_f64 t (idx !pos_a i d) (initial_position ~n:p.n i d);
          B.write_f64 t (idx !vel_a i d) 0.0;
          B.write_f64 t (idx !acc_a i d) 0.0
        done
      done;
      B.barrier_wait t bar;
      (* Snapshot of the shared position array, refreshed once per force
         phase: the copy goes through the DSM; the O(n^2) pair loop then
         runs on private memory (cost charged per pair below). *)
      let local_pos = Array.make (p.n * 3) 0.0 in
      let refresh_positions () =
        for k = 0 to (p.n * 3) - 1 do
          local_pos.(k) <- B.read_f64 t (!pos_a + (k * 8))
        done
      in
      let charge_pairs () =
        B.charge_flops t ((p.n - 1) * flops_per_pair);
        B.charge_mem_ops t ((p.n - 1) * mem_ops_per_pair)
      in
      (* Initial accelerations. *)
      refresh_positions ();
      for i = lo to hi - 1 do
        let (ax, ay, az), _ =
          accel_of ~n:p.n ~softening:p.softening local_pos i
        in
        charge_pairs ();
        B.write_f64 t (idx !acc_a i 0) ax;
        B.write_f64 t (idx !acc_a i 1) ay;
        B.write_f64 t (idx !acc_a i 2) az
      done;
      B.barrier_wait t bar;
      for _s = 0 to p.steps - 1 do
        (* Phase A: advance own positions. *)
        for i = lo to hi - 1 do
          for d = 0 to 2 do
            let k = idx !pos_a i d in
            let v = B.read_f64 t (idx !vel_a i d) in
            let a = B.read_f64 t (idx !acc_a i d) in
            B.write_f64 t k
              (B.read_f64 t k +. (v *. p.dt) +. (0.5 *. a *. p.dt *. p.dt))
          done;
          B.charge_flops t 18
        done;
        B.barrier_wait t bar;
        (* Phase B: forces from the published positions; velocity update
           and local energy accumulation. *)
        let ke = ref 0.0 and pe = ref 0.0 in
        refresh_positions ();
        for i = lo to hi - 1 do
          let (ax, ay, az), pei =
            accel_of ~n:p.n ~softening:p.softening local_pos i
          in
          charge_pairs ();
          let upd d nv =
            let ka = idx !acc_a i d and kv = idx !vel_a i d in
            let old_a = B.read_f64 t ka in
            B.write_f64 t ka nv;
            let v = B.read_f64 t kv +. (0.5 *. (old_a +. nv) *. p.dt) in
            B.write_f64 t kv v;
            ke := !ke +. (0.5 *. v *. v)
          in
          upd 0 ax;
          upd 1 ay;
          upd 2 az;
          B.charge_flops t 21;
          pe := !pe +. pei
        done;
        B.lock t m;
        B.write_f64 t !en_a (B.read_f64 t !en_a +. !ke);
        B.write_f64 t (!en_a + 8) (B.read_f64 t (!en_a + 8) +. !pe);
        B.unlock t m;
        B.barrier_wait t bar;
        if tid = 0 then begin
          (* Lock-protected data: read and reset under the mutex. *)
          B.lock t m;
          energies :=
            (B.read_f64 t !en_a, B.read_f64 t (!en_a + 8)) :: !energies;
          B.write_f64 t !en_a 0.0;
          B.write_f64 t (!en_a + 8) 0.0;
          B.unlock t m
        end;
        B.barrier_wait t bar
      done;
      compute.(tid) <- B.compute_ns t;
      sync.(tid) <- B.sync_ns t;
      if tid = 0 then begin
        let sum = ref 0.0 in
        for i = 0 to p.n - 1 do
          for d = 0 to 2 do
            sum := !sum +. B.read_f64 t (idx !pos_a i d)
          done
        done;
        pos_checksum := !sum
      end
    in
    for _i = 1 to threads do
      B.spawn sys body
    done;
    B.run sys;
    { params = p;
      threads;
      wall_ns = B.elapsed_ns sys;
      compute_ns = compute;
      sync_ns = sync;
      pos_checksum = !pos_checksum;
      energies = List.rev !energies }
end

let run (backend : Backend_sig.backend) ~threads p =
  let module B = (val backend) in
  let module M = Make (B) in
  M.run ~threads p
