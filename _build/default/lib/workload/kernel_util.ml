(** Shared helpers for the benchmark kernels. *)

(* Hot mutex-protected scalars (global sums, residuals, energies) get their
   own DSM line: the kernels pad the allocation on both sides so no
   ordinary-region data can share a line with them. Without this, a
   neighbouring private write would generate barrier write notices for the
   line and defeat the fine-grained update propagation that keeps
   lock-protected data cached (the standard cache-line-alignment idiom,
   scaled to DSM line sizes). The padding covers the largest line any
   configuration uses (8 pages x 4 KiB). *)
let isolation_pad = 32 * 1024

let isolated_size bytes = (2 * isolation_pad) + bytes
