let round_size bytes =
  if bytes <= 0 then invalid_arg "Allocator.round_size: bytes must be > 0";
  (bytes + 7) / 8 * 8

module Arena = struct
  type t = {
    mutable chunk_base : int;
    mutable chunk_used : int;
    mutable chunk_size : int;
    free_lists : (int, int list ref) Hashtbl.t;  (* size -> addresses *)
    mutable allocated : int;
    mutable wasted : int;
  }

  let create () =
    { chunk_base = 0;
      chunk_used = 0;
      chunk_size = 0;
      free_lists = Hashtbl.create 16;
      allocated = 0;
      wasted = 0 }

  let alloc t ~bytes =
    let size = round_size bytes in
    match Hashtbl.find_opt t.free_lists size with
    | Some ({ contents = addr :: rest } as cell) ->
      cell := rest;
      t.allocated <- t.allocated + size;
      `Hit addr
    | Some _ | None ->
      if t.chunk_used + size <= t.chunk_size then begin
        let addr = t.chunk_base + t.chunk_used in
        t.chunk_used <- t.chunk_used + size;
        t.allocated <- t.allocated + size;
        `Hit addr
      end
      else `Need_chunk

  let add_chunk t ~base ~size =
    t.wasted <- t.wasted + (t.chunk_size - t.chunk_used);
    t.chunk_base <- base;
    t.chunk_used <- 0;
    t.chunk_size <- size

  let free t ~addr ~bytes =
    let size = round_size bytes in
    match Hashtbl.find_opt t.free_lists size with
    | Some cell -> cell := addr :: !cell
    | None -> Hashtbl.replace t.free_lists size (ref [ addr ])

  let allocated_bytes t = t.allocated
  let wasted_bytes t = t.wasted

  let free_list_blocks t =
    Hashtbl.fold (fun _ cell acc -> acc + List.length !cell) t.free_lists 0
end
