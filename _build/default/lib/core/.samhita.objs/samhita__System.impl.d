lib/core/system.ml: Array Coherence_sc Config Desim Fabric Layout List Manager Memory_server Printf Thread_ctx
