lib/core/memory_server.ml: Bytes Config Desim Diff Fabric Hashtbl Layout List Option Printf Update
