lib/core/update.mli: Layout
