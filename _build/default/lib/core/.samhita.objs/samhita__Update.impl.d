lib/core/update.ml: Bytes Layout List
