lib/core/config.ml: Desim Fabric Format Result
