lib/core/coherence_sc.mli: Fabric
