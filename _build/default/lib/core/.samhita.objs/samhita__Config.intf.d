lib/core/config.mli: Desim Fabric Format
