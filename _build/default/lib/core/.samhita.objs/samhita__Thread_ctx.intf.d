lib/core/thread_ctx.mli: Cache Coherence_sc Config Desim Fabric Layout Manager Memory_server
