lib/core/cache.mli: Config Layout
