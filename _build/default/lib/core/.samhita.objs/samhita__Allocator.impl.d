lib/core/allocator.ml: Hashtbl List
