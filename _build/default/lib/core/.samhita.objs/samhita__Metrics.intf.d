lib/core/metrics.mli: Format System Thread_ctx
