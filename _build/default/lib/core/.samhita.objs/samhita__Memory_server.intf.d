lib/core/memory_server.mli: Config Desim Diff Fabric Layout Update
