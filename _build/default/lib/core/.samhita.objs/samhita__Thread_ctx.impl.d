lib/core/thread_ctx.ml: Allocator Array Bytes Cache Char Coherence_sc Config Desim Diff Fabric Hashtbl Home Int32 Int64 Layout List Manager Memory_server Option Printf Update
