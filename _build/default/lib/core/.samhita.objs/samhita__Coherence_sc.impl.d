lib/core/coherence_sc.ml: Fabric Hashtbl List
