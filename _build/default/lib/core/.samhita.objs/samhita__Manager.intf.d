lib/core/manager.mli: Config Desim Fabric Layout Update
