lib/core/cache.ml: Bytes Config Desim Hashtbl Layout List
