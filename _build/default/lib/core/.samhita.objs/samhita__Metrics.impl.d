lib/core/metrics.ml: Cache Desim Format List System Thread_ctx
