lib/core/diff.mli: Layout
