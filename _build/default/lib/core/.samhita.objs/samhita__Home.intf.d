lib/core/home.mli: Config
