lib/core/allocator.mli:
