lib/core/diff.ml: Bytes Layout List
