lib/core/home.ml: Config Hashtbl List Option
