lib/core/system.mli: Config Desim Fabric Layout Manager Memory_server Thread_ctx
