lib/core/manager.ml: Config Desim Fabric Hashtbl Home Layout List Option Queue Update
