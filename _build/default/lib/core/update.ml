type t = { addr : int; data : bytes }

let framing = 12

let of_i64 ~addr v =
  let data = Bytes.create 8 in
  Bytes.set_int64_le data 0 v;
  { addr; data }

let wire_bytes t = framing + Bytes.length t.data

let log_wire_bytes log =
  List.fold_left (fun acc u -> acc + wire_bytes u) 0 log

let apply_to_line (layout : Layout.t) t ~line buf =
  let len = Bytes.length t.data in
  let base = Layout.line_base layout line in
  let lo = max t.addr base in
  let hi = min (t.addr + len) (base + layout.Layout.line_bytes) in
  if lo < hi then
    Bytes.blit t.data (lo - t.addr) buf (lo - base) (hi - lo)

let lines_touched layout t =
  let len = Bytes.length t.data in
  if len = 0 then []
  else begin
    let first, last = Layout.lines_spanning layout ~addr:t.addr ~len in
    let rec build i acc = if i < first then acc else build (i - 1) (i :: acc) in
    build last []
  end
