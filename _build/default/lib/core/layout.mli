(** Address arithmetic for the shared global address space.

    Addresses are byte offsets into the GAS. A {e page} is the unit of
    fine-grained dirty tracking; a {e line} is the unit of caching and
    transfer ([pages_per_line] pages). Both are powers of two so all
    arithmetic is shifts and masks on the access fast path. *)

type t = private {
  page_bytes : int;
  pages_per_line : int;
  line_bytes : int;
  line_shift : int;
  line_mask : int;  (** [addr land line_mask] = offset within the line. *)
  page_shift : int;
}

val of_config : Config.t -> t

val line_of_addr : t -> int -> int
val line_base : t -> int -> int
(** Base address of line [id]. *)

val offset_in_line : t -> int -> int
val page_in_line : t -> offset:int -> int
(** Index of the page containing byte [offset] of a line. *)

val lines_spanning : t -> addr:int -> len:int -> int * int
(** [(first, last)] line ids touched by the byte range; [len > 0]. *)

val pp : Format.formatter -> t -> unit
