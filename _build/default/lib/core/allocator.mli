(** Per-thread arena bookkeeping — the first of the paper's three
    allocation strategies.

    Small requests are served from chunks that the owning thread obtained
    from the manager. Chunks are line-aligned and exclusively owned, so
    small allocations from different threads can never share a line —
    eliminating allocator-induced false sharing (paper §II). Freed blocks
    go to size-class free lists for exact-size reuse.

    The strategy {e decision} (arena vs shared zone vs striped-large) and
    the manager round trips live in {!Thread_ctx}; this module is pure
    address bookkeeping. *)

module Arena : sig
  type t

  val create : unit -> t

  val alloc : t -> bytes:int -> [ `Hit of int | `Need_chunk ]
  (** Try to serve from the free lists or the current chunk. [`Need_chunk]
      means the caller must fetch a fresh chunk from the manager (via
      {!add_chunk}) and retry. Sizes are rounded up to 8 bytes. *)

  val add_chunk : t -> base:int -> size:int -> unit
  (** Hand the arena a new chunk. Any remainder of the previous chunk is
      abandoned (internal fragmentation, counted by {!wasted_bytes}). *)

  val free : t -> addr:int -> bytes:int -> unit
  (** Return a block for exact-size reuse. *)

  val allocated_bytes : t -> int
  val wasted_bytes : t -> int
  val free_list_blocks : t -> int
end

val round_size : int -> int
(** Sizes are rounded up to a multiple of 8 bytes. *)
