(** Home assignment: which memory server backs a given line.

    Lines are striped round-robin across the memory servers in runs of
    [stripe_lines], so any allocation larger than one stripe spreads over
    every server — the paper's third allocation strategy (hot-spot
    avoidance for large allocations) falls out of this mapping once large
    requests are stripe-aligned. *)

val server_of_line : Config.t -> line:int -> int
(** Index in [\[0, memory_servers)]. *)

val stripe_bytes : Config.t -> int
(** Bytes per stripe ([stripe_lines] lines). *)

val group_lines_by_server : Config.t -> int list -> (int * int list) list
(** Partition line ids by home server; servers ascending, each with its
    lines in input order. *)
