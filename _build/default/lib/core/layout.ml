type t = {
  page_bytes : int;
  pages_per_line : int;
  line_bytes : int;
  line_shift : int;
  line_mask : int;
  page_shift : int;
}

let log2 n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let of_config (cfg : Config.t) =
  let line_bytes = Config.line_bytes cfg in
  { page_bytes = cfg.Config.page_bytes;
    pages_per_line = cfg.Config.pages_per_line;
    line_bytes;
    line_shift = log2 line_bytes;
    line_mask = line_bytes - 1;
    page_shift = log2 cfg.Config.page_bytes }

let line_of_addr t addr = addr lsr t.line_shift
let line_base t id = id lsl t.line_shift
let offset_in_line t addr = addr land t.line_mask
let page_in_line t ~offset = offset lsr t.page_shift

let lines_spanning t ~addr ~len =
  if len <= 0 then invalid_arg "Layout.lines_spanning: len must be > 0";
  (line_of_addr t addr, line_of_addr t (addr + len - 1))

let pp ppf t =
  Format.fprintf ppf "page=%dB line=%dB (%d pages)" t.page_bytes t.line_bytes
    t.pages_per_line
