(** Bytewise diffs for the multiple-writer protocol.

    When a thread first writes a cached line in an ordinary region, the
    cache keeps a pristine copy (the {e twin}). At the next consistency
    point, the diff of the current contents against the twin — restricted
    to pages actually written — travels to the line's home, which applies
    it. Two threads writing disjoint bytes of the same line (false sharing)
    produce disjoint diffs that merge cleanly at the home. *)

type span = { offset : int; data : bytes }
(** A run of modified bytes at [offset] within the line. *)

type t = { line : int; spans : span list }

val make :
  Layout.t -> line:int -> twin:bytes -> current:bytes -> dirty_pages:int -> t
(** Compare [current] against [twin] within the pages set in the
    [dirty_pages] bitmask. Spans are byte-exact: only changed bytes are
    carried, so concurrent writers of disjoint bytes — even interleaved
    within one word — merge correctly at the home. Raises
    [Invalid_argument] if the buffers are not line-sized. *)

val apply : t -> bytes -> unit
(** Write every span into a line-sized buffer. *)

val is_empty : t -> bool
val span_count : t -> int

val payload_bytes : t -> int
(** Total modified bytes carried. *)

val wire_bytes : t -> int
(** Size on the wire: payload plus per-span and per-diff framing. *)

val coalesce_gap : int
(** Always 1: see the soundness note in the implementation. *)
