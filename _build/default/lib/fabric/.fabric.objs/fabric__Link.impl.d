lib/fabric/link.ml: Desim
