lib/fabric/link.mli: Desim
