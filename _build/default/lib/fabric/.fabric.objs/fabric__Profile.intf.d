lib/fabric/profile.mli: Desim Format
