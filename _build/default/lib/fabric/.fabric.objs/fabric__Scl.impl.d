lib/fabric/scl.ml: Desim Network
