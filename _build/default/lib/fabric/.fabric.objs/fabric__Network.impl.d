lib/fabric/network.ml: Array Desim Link Printf Profile
