lib/fabric/network.mli: Desim Link Profile
