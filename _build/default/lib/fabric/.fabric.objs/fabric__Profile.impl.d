lib/fabric/profile.ml: Desim Format
