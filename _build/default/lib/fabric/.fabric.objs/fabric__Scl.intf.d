lib/fabric/scl.mli: Desim Network
