type t = {
  name : string;
  hop_latency : Desim.Time.span;
  bandwidth_bytes_per_s : float;
  post_overhead : Desim.Time.span;
  switched : bool;
  header_bytes : int;
}

(* QDR IB: 32 Gbit/s of data after 8b/10b encoding; effective large-message
   bandwidth ~3.2 GB/s. Hop latency folds in switch transit and the PCIe
   crossing on each side of every message, per the paper's "pessimistic"
   note (Section I). Verbs post + completion handling ~600 ns of host CPU. *)
let ib_qdr_verbs =
  { name = "ib-qdr-verbs";
    hop_latency = Desim.Time.ns 850;
    bandwidth_bytes_per_s = 3.2e9;
    post_overhead = Desim.Time.ns 600;
    switched = true;
    header_bytes = 64 }

(* SCIF across PCIe gen2 x16: one hop host<->coprocessor, ~6 GB/s payload
   bandwidth, lower software overhead (no verbs proxy). *)
let pcie_scif =
  { name = "pcie-scif";
    hop_latency = Desim.Time.ns 500;
    bandwidth_bytes_per_s = 6.0e9;
    post_overhead = Desim.Time.ns 250;
    switched = false;
    header_bytes = 32 }

let pp ppf t =
  Format.fprintf ppf
    "%s: hop=%a bw=%.1fGB/s post=%a %s hdr=%dB" t.name Desim.Time.pp_span
    t.hop_latency
    (t.bandwidth_bytes_per_s /. 1e9)
    Desim.Time.pp_span t.post_overhead
    (if t.switched then "switched" else "direct")
    t.header_bytes
