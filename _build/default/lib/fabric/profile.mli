(** Interconnect parameter sets.

    [ib_qdr_verbs] models the paper's actual testbed: QDR InfiniBand between
    cluster nodes, every transfer crossing NIC + switch + NIC (each side of
    the communication also crosses a PCIe bus, folded into the per-hop
    latency), with verbs posting overhead. [pcie_scif] models the paper's
    §V future-work target: SCIF directly across the PCI Express bus between
    the host and the coprocessor — one hop, no switch, no verbs proxy. *)

type t = {
  name : string;
  hop_latency : Desim.Time.span;
      (** One-way propagation latency per link (node↔switch or node↔node). *)
  bandwidth_bytes_per_s : float;  (** Per-link serialization bandwidth. *)
  post_overhead : Desim.Time.span;
      (** Software cost to post a work request (charged to the initiator). *)
  switched : bool;
      (** Whether node pairs communicate via a central switch (two hops) or
          directly (one hop). *)
  header_bytes : int;  (** Per-message framing overhead on the wire. *)
}

val ib_qdr_verbs : t
val pcie_scif : t

val pp : Format.formatter -> t -> unit
