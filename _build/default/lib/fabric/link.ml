type t = {
  name : string;
  latency : Desim.Time.span;
  bandwidth : float;  (* bytes per second *)
  resource : Desim.Resource.t;
  mutable bytes : int;
}

let create ?(name = "link") ~latency ~bandwidth_bytes_per_s () =
  if bandwidth_bytes_per_s <= 0. then
    invalid_arg "Link.create: bandwidth must be positive";
  { name;
    latency;
    bandwidth = bandwidth_bytes_per_s;
    resource = Desim.Resource.create ~name ();
    bytes = 0 }

let name t = t.name
let latency t = t.latency

let serialization_time t ~bytes =
  Desim.Time.span_of_float_ns (float_of_int bytes /. t.bandwidth *. 1e9)

let occupy t ~now ~bytes =
  t.bytes <- t.bytes + bytes;
  let ser = serialization_time t ~bytes in
  let wire_done = Desim.Resource.reserve t.resource ~now ~duration:ser in
  Desim.Time.add wire_done t.latency

let bytes_carried t = t.bytes
let transfers t = Desim.Resource.jobs t.resource
let busy_time t = Desim.Resource.busy_time t.resource
