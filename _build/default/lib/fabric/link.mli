(** A point-to-point link: propagation latency + serialization bandwidth,
    with FCFS occupancy (queueing) via a {!Desim.Resource}. *)

type t

val create :
  ?name:string -> latency:Desim.Time.span -> bandwidth_bytes_per_s:float ->
  unit -> t

val name : t -> string
val latency : t -> Desim.Time.span

val serialization_time : t -> bytes:int -> Desim.Time.span
(** Time to push [bytes] onto the wire at full bandwidth (no queueing). *)

val occupy : t -> now:Desim.Time.t -> bytes:int -> Desim.Time.t
(** Book the link for a transfer arriving at its head at [now]; returns the
    instant the last byte {e arrives at the far end} (start-of-service
    queueing + serialization + propagation latency). *)

val bytes_carried : t -> int
val transfers : t -> int
val busy_time : t -> Desim.Time.span
