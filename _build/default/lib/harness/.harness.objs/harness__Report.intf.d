lib/harness/report.mli: Format Samhita
