lib/harness/experiments.ml: Array Fabric Hashtbl List Printf Samhita Series Workload
