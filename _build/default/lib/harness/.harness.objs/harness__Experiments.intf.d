lib/harness/experiments.mli: Series
