lib/harness/series.ml: Buffer Float Format List Option Printf String
