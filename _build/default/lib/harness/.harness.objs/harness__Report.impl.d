lib/harness/report.ml: Array Desim Fabric Format List Samhita
