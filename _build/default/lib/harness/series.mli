(** Figure data and rendering.

    Every reproduced figure is a set of named series over a shared x axis,
    printed as an aligned text table (the rows/series the paper plots) and
    exportable as CSV. *)

type series = { label : string; points : (float * float) list }

type figure = {
  id : string;  (** e.g. "fig3" *)
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
  notes : string list;  (** Shape expectations / commentary lines. *)
}

val render : Format.formatter -> figure -> unit
(** Aligned table: one row per distinct x, one column per series. Cells for
    series lacking a point at that x print "-". *)

val to_csv : figure -> string

val value_at : figure -> label:string -> x:float -> float option
(** Lookup for tests and shape assertions. *)

val xs : figure -> float list
(** Distinct x values, ascending. *)
