(** One entry point per figure of the paper's evaluation (Figures 3-13),
    plus the ablation studies listed in DESIGN.md §6.

    Every function is deterministic: same scale, same numbers. [Quick]
    shrinks sweeps for tests and smoke runs; [Paper] matches the paper's
    parameter ranges (N = 10, B = 256, M in {1,10,100}, S in {1,2,4,8},
    up to 8 Pthreads cores and 32 Samhita cores). *)

type scale = Quick | Paper

val scale_of_string : string -> (scale, string) result

type ctx
(** Memoizes kernel runs shared between figures (e.g. Figs 6-8 feed 9-10). *)

val ctx : scale -> ctx
val scale : ctx -> scale

val fig3 : ctx -> Series.figure
(** Normalized compute time vs cores, local allocation, M sweep. *)

val fig4 : ctx -> Series.figure
(** Same, global allocation. *)

val fig5 : ctx -> Series.figure
(** Same, global allocation with strided access. *)

val fig6 : ctx -> Series.figure
(** Compute time vs cores, local allocation, S sweep (M = 10). *)

val fig7 : ctx -> Series.figure
val fig8 : ctx -> Series.figure

val fig9 : ctx -> Series.figure
(** Compute time vs S at P = 16 for the three strategies. *)

val fig10 : ctx -> Series.figure
(** Synchronization time vs S at P = 16 for the three strategies. *)

val fig11 : ctx -> Series.figure
(** Synchronization time vs cores, both runtimes, three strategies. *)

val fig12 : ctx -> Series.figure
(** Jacobi strong-scaling speedup vs cores. *)

val fig13 : ctx -> Series.figure
(** Molecular-dynamics strong-scaling speedup vs cores. *)

val ablation_prefetch : ctx -> Series.figure
(** Cold-start compute time and misses with prefetching on/off. *)

val ablation_line_size : ctx -> Series.figure
(** Strided-access compute/sync vs pages per cache line. *)

val ablation_manager_bypass : ctx -> Series.figure
(** §V future work: local synchronization on a single compute node. *)

val ablation_fabric : ctx -> Series.figure
(** §V future work: SCIF/PCIe profile vs the verbs-proxy IB path. *)

val ablation_history : ctx -> Series.figure
(** Fine-grained update history depth: patch vs invalidate on acquire. *)

val ablation_eviction : ctx -> Series.figure
(** Write-biased eviction under cache pressure. *)

val all : ctx -> (string * (ctx -> Series.figure)) list
(** Figure id -> builder, in presentation order (paper figures first). *)

val by_id : string -> (ctx -> Series.figure) option
