type scale = Quick | Paper

let scale_of_string = function
  | "quick" -> Ok Quick
  | "paper" | "full" -> Ok Paper
  | s -> Error (Printf.sprintf "unknown scale %S (expected quick|paper)" s)

(* ------------------------------------------------------------------ *)
(* Parameter ranges                                                    *)

let pth_cores = function Quick -> [ 1; 2; 4 ] | Paper -> [ 1; 2; 4; 8 ]

let smh_cores = function
  | Quick -> [ 1; 4; 8 ]
  | Paper -> [ 1; 2; 4; 8; 16; 24; 32 ]

let m_values = function Quick -> [ 1; 10 ] | Paper -> [ 1; 10; 100 ]
let s_values = function Quick -> [ 1; 4 ] | Paper -> [ 1; 2; 4; 8 ]
let mid_cores = function Quick -> 4 | Paper -> 16

let jacobi_params = function
  | Quick -> { Workload.Jacobi.default_params with n = 64; iters = 6 }
  | Paper -> { Workload.Jacobi.default_params with n = 1024; iters = 10 }

let md_params = function
  | Quick -> { Workload.Md.default_params with n = 256; steps = 4 }
  | Paper -> { Workload.Md.default_params with n = 2048; steps = 8 }

(* ------------------------------------------------------------------ *)
(* Memoized kernel runs                                                *)

type ctx = {
  scale : scale;
  micro : (string, Workload.Microbench.result) Hashtbl.t;
  jacobi : (string, Workload.Jacobi.result) Hashtbl.t;
  md : (string, Workload.Md.result) Hashtbl.t;
  evict : (string, float * float) Hashtbl.t;
}

let ctx scale =
  { scale;
    micro = Hashtbl.create 64;
    jacobi = Hashtbl.create 16;
    md = Hashtbl.create 16;
    evict = Hashtbl.create 8 }

let scale c = c.scale

type backend_kind = Pth | Smh

let backend_name = function Pth -> "pth" | Smh -> "smh"

let backend ?config = function
  | Pth -> Workload.Smp_backend.default
  | Smh -> (
      match config with
      | None -> Workload.Samhita_backend.default
      | Some c -> Workload.Samhita_backend.make ~config:c ())

let micro_key kind ?tag ~threads (p : Workload.Microbench.params) =
  Printf.sprintf "%s%s-%s-P%d-M%d-S%d-B%d-N%d-w%d" (backend_name kind)
    (match tag with None -> "" | Some t -> "[" ^ t ^ "]")
    (Workload.Microbench.mode_name p.alloc)
    threads p.m_inner p.s_rows p.b_cols p.n_outer p.warmup

let micro c kind ?config ?tag ~threads (p : Workload.Microbench.params) =
  let key = micro_key kind ?tag ~threads p in
  match Hashtbl.find_opt c.micro key with
  | Some r -> r
  | None ->
    let r = Workload.Microbench.run (backend ?config kind) ~threads p in
    if r.gsum <> r.expected_gsum then
      failwith ("harness: gsum mismatch in run " ^ key);
    Hashtbl.replace c.micro key r;
    r

let jacobi c kind ~threads p =
  let key = Printf.sprintf "%s-P%d" (backend_name kind) threads in
  match Hashtbl.find_opt c.jacobi key with
  | Some r -> r
  | None ->
    let r = Workload.Jacobi.run (backend kind) ~threads p in
    Hashtbl.replace c.jacobi key r;
    r

let md c kind ~threads p =
  let key = Printf.sprintf "%s-P%d" (backend_name kind) threads in
  match Hashtbl.find_opt c.md key with
  | Some r -> r
  | None ->
    let r = Workload.Md.run (backend kind) ~threads p in
    Hashtbl.replace c.md key r;
    r

let imean a =
  Array.fold_left (fun acc x -> acc +. float_of_int x) 0. a
  /. float_of_int (Array.length a)

let ns_to_s v = v *. 1e-9

(* ------------------------------------------------------------------ *)
(* Figures 3-5: normalized compute time                                *)

let micro_base (p : Workload.Microbench.params) alloc m =
  { p with Workload.Microbench.alloc; m_inner = m }

let normalized_compute_fig c ~id ~alloc ~title =
  let base = Workload.Microbench.default_params in
  let ms = m_values c.scale in
  let norm_base m =
    (* Everything is normalized by the 1-thread Pthreads compute time for
       the same M (the paper's convention). *)
    let r = micro c Pth ~threads:1 (micro_base base Workload.Microbench.Local m) in
    imean r.compute_ns
  in
  let series kind =
    List.map
      (fun m ->
         let b = norm_base m in
         { Series.label = Printf.sprintf "%s,M=%d" (backend_name kind) m;
           points =
             List.map
               (fun p ->
                  let r = micro c kind ~threads:p (micro_base base alloc m) in
                  (float_of_int p, imean r.compute_ns /. b))
               (match kind with
                | Pth -> pth_cores c.scale
                | Smh -> smh_cores c.scale) })
      ms
  in
  { Series.id;
    title;
    xlabel = "cores";
    ylabel = "compute time (normalized to 1-thread pthreads)";
    series = series Pth @ series Smh;
    notes =
      [ "paper shape: pthreads and samhita flat and close for local \
         allocation;";
        "false-sharing penalty visible at small M, amortized as M grows." ] }

let fig3 c =
  normalized_compute_fig c ~id:"fig3" ~alloc:Workload.Microbench.Local
    ~title:"normalized compute time, local allocation"

let fig4 c =
  normalized_compute_fig c ~id:"fig4" ~alloc:Workload.Microbench.Global
    ~title:"normalized compute time, global allocation"

let fig5 c =
  normalized_compute_fig c ~id:"fig5"
    ~alloc:Workload.Microbench.Global_strided
    ~title:"normalized compute time, global allocation strided access"

(* ------------------------------------------------------------------ *)
(* Figures 6-8: compute time vs cores for S sweep (Samhita)            *)

let compute_vs_cores_fig c ~id ~alloc ~title =
  let base = { Workload.Microbench.default_params with m_inner = 10 } in
  let series =
    List.map
      (fun s ->
         { Series.label = Printf.sprintf "S=%d" s;
           points =
             List.map
               (fun p ->
                  let r =
                    micro c Smh ~threads:p
                      { (micro_base base alloc 10) with s_rows = s }
                  in
                  (float_of_int p, ns_to_s (imean r.compute_ns)))
               (smh_cores c.scale) })
      (s_values c.scale)
  in
  { Series.id;
    title;
    xlabel = "cores";
    ylabel = "compute time (s)";
    series;
    notes =
      [ "paper shape: compute grows with S; flat across cores without \
         false sharing, growing with cores as false sharing increases." ] }

let fig6 c =
  compute_vs_cores_fig c ~id:"fig6" ~alloc:Workload.Microbench.Local
    ~title:"compute time vs cores, local allocation"

let fig7 c =
  compute_vs_cores_fig c ~id:"fig7" ~alloc:Workload.Microbench.Global
    ~title:"compute time vs cores, global allocation"

let fig8 c =
  compute_vs_cores_fig c ~id:"fig8" ~alloc:Workload.Microbench.Global_strided
    ~title:"compute time vs cores, global allocation strided access"

(* ------------------------------------------------------------------ *)
(* Figures 9-10: compute / sync time vs ordinary-region size at P=16   *)

let vs_s_fig c ~id ~metric ~ylabel ~title ~notes =
  let p16 = mid_cores c.scale in
  let base = { Workload.Microbench.default_params with m_inner = 10 } in
  let series =
    List.map
      (fun (label, alloc) ->
         { Series.label;
           points =
             List.map
               (fun s ->
                  let r =
                    micro c Smh ~threads:p16
                      { (micro_base base alloc 10) with s_rows = s }
                  in
                  (float_of_int s, ns_to_s (metric r)))
               (s_values c.scale) })
      [ ("local", Workload.Microbench.Local);
        ("global", Workload.Microbench.Global);
        ("strided", Workload.Microbench.Global_strided) ]
  in
  { Series.id;
    title = Printf.sprintf "%s (P=%d)" title p16;
    xlabel = "rows of data (S)";
    ylabel;
    series;
    notes }

let fig9 c =
  vs_s_fig c ~id:"fig9"
    ~metric:(fun r -> imean r.Workload.Microbench.compute_ns)
    ~ylabel:"compute time (s)" ~title:"compute time vs ordinary region size"
    ~notes:
      [ "paper shape: compute grows with S; local <= global <= strided, \
         gap grows with S." ]

let fig10 c =
  vs_s_fig c ~id:"fig10"
    ~metric:(fun r -> imean r.Workload.Microbench.sync_ns)
    ~ylabel:"synchronization time (s)"
    ~title:"synchronization time vs ordinary region size"
    ~notes:
      [ "paper shape: local flat; sync grows with S under false sharing \
         (more data moved at consistency points), strided worst." ]

(* ------------------------------------------------------------------ *)
(* Figure 11: synchronization time vs cores                            *)

let fig11 c =
  let base = { Workload.Microbench.default_params with m_inner = 10 } in
  let modes =
    [ ("local", Workload.Microbench.Local);
      ("global", Workload.Microbench.Global);
      ("strided", Workload.Microbench.Global_strided) ]
  in
  let series kind =
    List.map
      (fun (label, alloc) ->
         { Series.label = Printf.sprintf "%s_%s" (backend_name kind) label;
           points =
             List.map
               (fun p ->
                  let r = micro c kind ~threads:p (micro_base base alloc 10) in
                  (float_of_int p, ns_to_s (imean r.sync_ns)))
               (match kind with
                | Pth -> pth_cores c.scale
                | Smh -> smh_cores c.scale) })
      modes
  in
  { Series.id = "fig11";
    title = "synchronization time vs cores (plot on a log scale)";
    xlabel = "cores";
    ylabel = "synchronization time (s)";
    series = series Pth @ series Smh;
    notes =
      [ "paper shape: samhita sync 1-2 orders of magnitude above pthreads \
         (consistency operations ride on synchronization);";
        "growth with cores moderate; strided > global > local for samhita." ] }

(* ------------------------------------------------------------------ *)
(* Figures 12-13: application speedups                                 *)

let speedup_fig c ~id ~title ~wall_pth ~wall_smh ~notes =
  let base = wall_pth 1 in
  let series =
    [ { Series.label = "pthreads";
        points =
          List.map
            (fun p -> (float_of_int p, base /. wall_pth p))
            (pth_cores c.scale) };
      { Series.label = "samhita";
        points =
          List.map
            (fun p -> (float_of_int p, base /. wall_smh p))
            (smh_cores c.scale) } ]
  in
  { Series.id = id;
    title;
    xlabel = "cores";
    ylabel = "speed-up vs 1-core pthreads";
    series;
    notes }

let fig12 c =
  let p = jacobi_params c.scale in
  speedup_fig c ~id:"fig12" ~title:"Jacobi speedup vs cores"
    ~wall_pth:(fun t -> float_of_int (jacobi c Pth ~threads:t p).wall_ns)
    ~wall_smh:(fun t -> float_of_int (jacobi c Smh ~threads:t p).wall_ns)
    ~notes:
      [ "paper shape: samhita tracks pthreads within the node and keeps \
         speedup to ~16 cores, flattening by 32." ]

let fig13 c =
  let p = md_params c.scale in
  speedup_fig c ~id:"fig13" ~title:"molecular dynamics speedup vs cores"
    ~wall_pth:(fun t -> float_of_int (md c Pth ~threads:t p).wall_ns)
    ~wall_smh:(fun t -> float_of_int (md c Smh ~threads:t p).wall_ns)
    ~notes:
      [ "paper shape: computation O(n) per particle masks synchronization; \
         samhita scales well to 32 cores." ]

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 6)                                     *)

let smh_with c ~tag ~config ~threads p =
  micro c Smh ~config ~tag ~threads p

let ablation_prefetch c =
  (* Prefetching matters during cold first touches, and its benefit is a
     latency effect: a single scanning thread overlaps fetches with
     compute. (With many threads saturating one memory server the scan is
     bandwidth-bound and anticipatory requests cannot help.) Measure the
     whole run, not the warm steady-state window. *)
  let threads = 1 in
  ignore (mid_cores c.scale : int);
  (* One full line per row (B = 2048 doubles): a thread's data spans S
     lines, so initialization and post-invalidation refetches walk lines
     sequentially — the access pattern anticipatory paging targets. *)
  let base =
    { Workload.Microbench.default_params with
      m_inner = 1;
      warmup = 0;
      b_cols = 2048 }
  in
  let run label prefetch s =
    let config = { Samhita.Config.default with prefetch } in
    smh_with c ~tag:label ~config ~threads { base with s_rows = s }
  in
  let series =
    List.map
      (fun (label, prefetch) ->
         { Series.label = label ^ ":wall_ms";
           points =
             List.map
               (fun s ->
                  let r = run label prefetch s in
                  (float_of_int s, float_of_int r.wall_ns /. 1e6))
               (s_values c.scale) })
      [ ("prefetch-on", true); ("prefetch-off", false) ]
  in
  { Series.id = "abl-prefetch";
    title = "makespan of a line-walking workload with and without \
             prefetching";
    xlabel = "rows of data (S, one line each)";
    ylabel = "wall (ms)";
    series;
    notes =
      [ "anticipatory paging of the adjacent line converts sequential \
         first-touch misses into asynchronous installs (paper section II)." ] }

let ablation_line_size c =
  let threads = mid_cores c.scale in
  let base =
    { Workload.Microbench.default_params with
      m_inner = 10;
      alloc = Workload.Microbench.Global_strided }
  in
  let series =
    List.map
      (fun (label, metric) ->
         { Series.label;
           points =
             List.map
               (fun ppl ->
                  let config =
                    { Samhita.Config.default with pages_per_line = ppl }
                  in
                  let r =
                    smh_with c ~tag:(Printf.sprintf "ppl%d" ppl) ~config
                      ~threads base
                  in
                  (float_of_int ppl, ns_to_s (metric r)))
               [ 1; 2; 4; 8 ] })
      [ ("compute", fun r -> imean r.Workload.Microbench.compute_ns);
        ("sync", fun r -> imean r.Workload.Microbench.sync_ns) ]
  in
  { Series.id = "abl-line";
    title = "strided access vs pages per cache line";
    xlabel = "pages per line";
    ylabel = "time (s)";
    series;
    notes =
      [ "bigger lines help spatial locality but widen the false-sharing \
         window (paper section II trade-off)." ] }

let ablation_manager_bypass c =
  let base = { Workload.Microbench.default_params with m_inner = 10 } in
  let cores =
    List.filter (fun p -> p <= 8) (smh_cores c.scale)
  in
  let series =
    List.map
      (fun (label, manager_bypass) ->
         let config = { Samhita.Config.default with manager_bypass } in
         { Series.label;
           points =
             List.map
               (fun p ->
                  let r = smh_with c ~tag:label ~config ~threads:p base in
                  (float_of_int p, ns_to_s (imean r.sync_ns)))
               cores })
      [ ("manager-remote", false); ("manager-bypass", true) ]
  in
  { Series.id = "abl-bypass";
    title = "single-node synchronization bypass (paper section V)";
    xlabel = "cores (single compute node)";
    ylabel = "synchronization time (s)";
    series;
    notes =
      [ "co-locating the manager with a single compute node turns \
         synchronization round trips into loopbacks." ] }

let ablation_fabric c =
  let threads = min 8 (mid_cores c.scale) in
  let base = { Workload.Microbench.default_params with m_inner = 10 } in
  let series =
    List.map
      (fun (label, fabric) ->
         let config = { Samhita.Config.default with fabric } in
         { Series.label;
           points =
             List.map
               (fun (x, alloc) ->
                  let r =
                    smh_with c ~tag:label ~config ~threads
                      { base with alloc }
                  in
                  (x, ns_to_s (imean r.sync_ns)))
               [ (0., Workload.Microbench.Local);
                 (1., Workload.Microbench.Global);
                 (2., Workload.Microbench.Global_strided) ] })
      [ ("ib-verbs", Fabric.Profile.ib_qdr_verbs);
        ("pcie-scif", Fabric.Profile.pcie_scif) ]
  in
  { Series.id = "abl-fabric";
    title = "SCIF/PCIe transport vs verbs proxy (paper section V)";
    xlabel = "allocation mode (0=local 1=global 2=strided)";
    ylabel = "synchronization time (s)";
    series;
    notes =
      [ "direct PCIe communication removes the verbs-proxy hop the paper \
         calls out as pessimistic." ] }

let ablation_history c =
  let threads = mid_cores c.scale in
  let base = { Workload.Microbench.default_params with m_inner = 10 } in
  let series =
    List.map
      (fun (label, metric) ->
         { Series.label;
           points =
             List.map
               (fun h ->
                  let config =
                    { Samhita.Config.default with update_log_history = h }
                  in
                  let r =
                    smh_with c ~tag:(Printf.sprintf "hist%d" h) ~config
                      ~threads base
                  in
                  (float_of_int h, ns_to_s (metric r)))
               [ 0; 4; 16; 64 ] })
      [ ("compute", fun r -> imean r.Workload.Microbench.compute_ns);
        ("sync", fun r -> imean r.Workload.Microbench.sync_ns) ]
  in
  { Series.id = "abl-history";
    title = "fine-grained update history depth";
    xlabel = "retained release logs per lock";
    ylabel = "time (s)";
    series;
    notes =
      [ "a deep history lets acquirers patch cached lines (fine-grained \
         updates); a shallow one forces invalidate-and-refetch inside \
         critical sections." ] }

(* A scenario where the eviction policy is visible: each thread keeps a
   small hot written set and streams over a larger read-only region that
   overflows the cache. Write-biased eviction spends its evictions on the
   written lines (flushing them early); pure LRU evicts whichever streamed
   line is oldest. We report makespan and how often a dirty victim was
   chosen. *)
let eviction_run c ~evict_dirty_first ~cache_lines =
  let key = Printf.sprintf "evict-%b-%d" evict_dirty_first cache_lines in
  match Hashtbl.find_opt c.evict key with
  | Some r -> r
  | None ->
    let config =
      { Samhita.Config.default with
        cache_lines;
        evict_dirty_first;
        prefetch = false }
    in
    let threads = 2 in
    let rounds = 8 in
    let stream_lines = cache_lines - 1 in
    let sys = Samhita.System.create ~config ~threads () in
    let bar = Samhita.System.barrier sys ~parties:threads in
    let lb = Samhita.Config.line_bytes config in
    let module T = Samhita.Thread_ctx in
    for tid = 0 to threads - 1 do
      ignore
        (Samhita.System.spawn sys (fun t ->
             let hot = T.malloc t ~bytes:lb in
             let stream = T.malloc t ~bytes:(stream_lines * lb) in
             let cold = T.malloc t ~bytes:(2 * rounds * lb) in
             T.barrier_wait t bar;
             for r = 0 to rounds - 1 do
               for i = 0 to stream_lines - 1 do
                 ignore (T.read_f64 t (stream + (i * lb)) : float)
               done;
               T.write_f64 t hot (float_of_int (r + tid));
               (* Two cold single-use lines overflow the cache, forcing the
                  policy to choose victims while the hot line is dirty. *)
               ignore (T.read_f64 t (cold + (2 * r * lb)) : float);
               ignore (T.read_f64 t (cold + (((2 * r) + 1) * lb)) : float);
               T.barrier_wait t bar
             done)
          : T.t)
    done;
    Samhita.System.run sys;
    let ts = Samhita.System.threads sys in
    let dirty_evictions =
      List.fold_left
        (fun acc t -> acc + Samhita.Cache.dirty_evictions (T.cache t))
        0 ts
    in
    let mean_sync =
      List.fold_left (fun acc t -> acc +. float_of_int (T.sync_ns t)) 0. ts
      /. float_of_int threads
    in
    let r = (mean_sync /. 1e6, float_of_int dirty_evictions) in
    Hashtbl.replace c.evict key r;
    r

let ablation_eviction c =
  let caps = [ 4; 8; 16 ] in
  let series =
    List.concat_map
      (fun (label, evict_dirty_first) ->
         [ { Series.label = label ^ ":sync_ms";
             points =
               List.map
                 (fun cap ->
                    ( float_of_int cap,
                      fst
                        (eviction_run c ~evict_dirty_first ~cache_lines:cap)
                    ))
                 caps };
           { Series.label = label ^ ":dirty_evicts";
             points =
               List.map
                 (fun cap ->
                    ( float_of_int cap,
                      snd
                        (eviction_run c ~evict_dirty_first ~cache_lines:cap)
                    ))
                 caps } ])
      [ ("dirty-first", true); ("lru-only", false) ]
  in
  { Series.id = "abl-evict";
    title = "write-biased eviction under cache pressure";
    xlabel = "cache capacity (lines)";
    ylabel = "sync time (ms) / dirty evictions (count)";
    series;
    notes =
      [ "the write-biased policy spends evictions on written lines, \
         flushing their diffs early and shrinking the flush burst at the \
         next consistency point (paper section II)." ] }

let ablation_consistency c =
  (* RegC vs an IVY-style sequential-consistency DSM (single writer,
     write-invalidate): the comparison motivating the paper's weak model.
     Worst-case SC behaviour (line ping-pong) costs one coherence
     transaction per store, so sweeps stay within one node's core count. *)
  let cores = match c.scale with Quick -> [ 1; 4 ] | Paper -> [ 1; 2; 4; 8 ] in
  let base = { Workload.Microbench.default_params with m_inner = 5 } in
  let sc_config =
    { Samhita.Config.default with model = Samhita.Config.Sc_invalidate }
  in
  let series =
    List.concat_map
      (fun (mlabel, config, tag) ->
         List.map
           (fun (alabel, alloc) ->
              { Series.label = mlabel ^ "-" ^ alabel;
                points =
                  List.map
                    (fun pth ->
                       let r =
                         match tag with
                         | None -> micro c Smh ~threads:pth { base with alloc }
                         | Some tag ->
                           smh_with c ~tag ~config ~threads:pth
                             { base with alloc }
                       in
                       (float_of_int pth, ns_to_s (imean r.compute_ns)))
                    cores })
           [ ("local", Workload.Microbench.Local);
             ("strided", Workload.Microbench.Global_strided) ])
      [ ("regc", Samhita.Config.default, None);
        ("sc", sc_config, Some "sc") ]
  in
  { Series.id = "abl-sc";
    title = "regional consistency vs sequential-consistency DSM";
    xlabel = "cores";
    ylabel = "compute time (s)";
    series;
    notes =
      [ "under false sharing the single-writer protocol pays a coherence \
         transaction per store (line ping-pong); RegC batches the damage \
         into consistency points - the paper's premise (sections I-II)." ] }

(* ------------------------------------------------------------------ *)

let all _c =
  [ ("fig3", fig3); ("fig4", fig4); ("fig5", fig5); ("fig6", fig6);
    ("fig7", fig7); ("fig8", fig8); ("fig9", fig9); ("fig10", fig10);
    ("fig11", fig11); ("fig12", fig12); ("fig13", fig13);
    ("abl-prefetch", ablation_prefetch); ("abl-line", ablation_line_size);
    ("abl-bypass", ablation_manager_bypass); ("abl-fabric", ablation_fabric);
    ("abl-history", ablation_history); ("abl-evict", ablation_eviction);
    ("abl-sc", ablation_consistency) ]

let by_id id =
  List.assoc_opt id
    (all (ctx Quick) : (string * (ctx -> Series.figure)) list)
