(** The SMP node's physical memory and its MESI-flavoured coherence cost
    model.

    Data lives in one flat byte store (hardware shared memory really is
    one store). Per 64-byte line the model tracks which threads hold a
    copy and which one, if any, holds it modified; each access returns the
    nanosecond cost the initiating core would pay. State updates happen in
    program-issue order — the usual virtual-time-batching approximation,
    which is exact at synchronization granularity. *)

type t

val create : Config.t -> t

val alloc : t -> bytes:int -> align:int -> int
(** Bump allocation; grows the store on demand. *)

val used_bytes : t -> int

val read_cost : t -> thread:int -> addr:int -> float
(** Account a read by [thread] of the line holding [addr]; returns ns. *)

val write_cost : t -> thread:int -> addr:int -> float

val read_f64 : t -> int -> float
(** Raw data access (no costing) — used after costing, and by tests. *)

val write_f64 : t -> int -> float -> unit
val read_i64 : t -> int -> int64
val write_i64 : t -> int -> int64 -> unit

val coherence_misses : t -> int
val invalidations : t -> int
val cold_misses : t -> int
