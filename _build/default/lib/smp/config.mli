(** Cost model for the simulated cache-coherent SMP node (the paper's
    Pthreads baseline: one dual quad-core 2.8 GHz Penryn node).

    Hardware coherence operates on 64-byte lines — three orders of
    magnitude finer than Samhita's multi-page lines — which is why the
    baseline barely notices the micro-benchmark's false sharing while the
    DSM pays for it. *)

type t = {
  max_threads : int;  (** Cores in the node (8 on the testbed). *)
  coherence_line : int;  (** Power of two. *)
  t_mem : float;  (** ns per cache-hit access. *)
  t_flop : float;
  t_cold_miss : float;  (** ns: line fetched from DRAM. *)
  t_coherence_miss : float;  (** ns: cache-to-cache transfer. *)
  t_invalidate : float;  (** ns: write upgrade invalidating sharers. *)
  t_lock : Desim.Time.span;  (** Uncontended lock or unlock. *)
  t_barrier_base : Desim.Time.span;
  t_barrier_per_thread : Desim.Time.span;
}

val default : t
val validate : t -> (unit, string) result
