lib/smp/config.ml: Desim
