lib/smp/runtime.mli: Config Desim Machine
