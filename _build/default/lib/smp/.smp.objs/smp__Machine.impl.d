lib/smp/machine.ml: Bytes Config Hashtbl Int64
