lib/smp/config.mli: Desim
