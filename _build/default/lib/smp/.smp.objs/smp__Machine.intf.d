lib/smp/machine.mli: Config
