lib/smp/runtime.ml: Config Desim Int64 List Machine Printf Queue
