type t = {
  max_threads : int;
  coherence_line : int;
  t_mem : float;
  t_flop : float;
  t_cold_miss : float;
  t_coherence_miss : float;
  t_invalidate : float;
  t_lock : Desim.Time.span;
  t_barrier_base : Desim.Time.span;
  t_barrier_per_thread : Desim.Time.span;
}

let default =
  { max_threads = 8;
    coherence_line = 64;
    t_mem = 1.2;
    t_flop = 0.8;
    t_cold_miss = 90.0;
    t_coherence_miss = 60.0;
    t_invalidate = 80.0;
    t_lock = Desim.Time.ns 30;
    t_barrier_base = Desim.Time.ns 200;
    t_barrier_per_thread = Desim.Time.ns 50 }

let validate t =
  if t.max_threads < 1 then Error "max_threads must be >= 1"
  else if t.coherence_line <= 0 || t.coherence_line land (t.coherence_line - 1) <> 0
  then Error "coherence_line must be a power of two"
  else if t.t_mem < 0. || t.t_flop < 0. || t.t_cold_miss < 0.
          || t.t_coherence_miss < 0. || t.t_invalidate < 0.
  then Error "cost rates must be non-negative"
  else Ok ()
