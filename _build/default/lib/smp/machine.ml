(* Per coherence line: which threads hold a copy (bitmask) and the thread
   holding it modified, or -1. Absent from the table = untouched (cold). *)
type line_state = {
  mutable present : int;
  mutable owner : int;
}

type t = {
  cfg : Config.t;
  mutable data : bytes;
  mutable used : int;
  lines : (int, line_state) Hashtbl.t;
  line_shift : int;
  mutable coherence_misses : int;
  mutable invalidations : int;
  mutable cold_misses : int;
}

let log2 n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let create (cfg : Config.t) =
  (match Config.validate cfg with
   | Ok () -> ()
   | Error m -> invalid_arg ("Smp.Machine.create: " ^ m));
  { cfg;
    data = Bytes.make (1 lsl 20) '\000';
    used = 0;
    lines = Hashtbl.create 1024;
    line_shift = log2 cfg.Config.coherence_line;
    coherence_misses = 0;
    invalidations = 0;
    cold_misses = 0 }

let grow t needed =
  let size = ref (Bytes.length t.data) in
  while !size < needed do
    size := !size * 2
  done;
  if !size > Bytes.length t.data then begin
    let fresh = Bytes.make !size '\000' in
    Bytes.blit t.data 0 fresh 0 (Bytes.length t.data);
    t.data <- fresh
  end

let alloc t ~bytes ~align =
  if bytes <= 0 then invalid_arg "Smp.Machine.alloc: bytes must be > 0";
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Smp.Machine.alloc: align must be a positive power of two";
  let base = (t.used + align - 1) land lnot (align - 1) in
  t.used <- base + bytes;
  grow t t.used;
  base

let used_bytes t = t.used

let state_of t addr = Hashtbl.find_opt t.lines (addr lsr t.line_shift)

let read_cost t ~thread ~addr =
  let bit = 1 lsl thread in
  match state_of t addr with
  | None ->
    Hashtbl.replace t.lines (addr lsr t.line_shift)
      { present = bit; owner = -1 };
    t.cold_misses <- t.cold_misses + 1;
    t.cfg.Config.t_cold_miss
  | Some st ->
    if st.present land bit <> 0 && (st.owner = thread || st.owner = -1) then
      t.cfg.Config.t_mem
    else begin
      (* Copy supplied by the current owner (downgraded to shared) or by
         another sharer/memory. *)
      let cost =
        if st.owner >= 0 && st.owner <> thread then begin
          t.coherence_misses <- t.coherence_misses + 1;
          t.cfg.Config.t_coherence_miss
        end
        else begin
          t.cold_misses <- t.cold_misses + 1;
          t.cfg.Config.t_cold_miss
        end
      in
      st.owner <- -1;
      st.present <- st.present lor bit;
      cost
    end

let write_cost t ~thread ~addr =
  let bit = 1 lsl thread in
  match state_of t addr with
  | None ->
    Hashtbl.replace t.lines (addr lsr t.line_shift)
      { present = bit; owner = thread };
    t.cold_misses <- t.cold_misses + 1;
    t.cfg.Config.t_cold_miss
  | Some st ->
    if st.owner = thread then t.cfg.Config.t_mem
    else begin
      (* Upgrade: invalidate every other copy. *)
      let others = st.present land lnot bit in
      let cost =
        if others <> 0 || st.owner >= 0 then begin
          t.invalidations <- t.invalidations + 1;
          t.cfg.Config.t_invalidate
        end
        else if st.present land bit <> 0 then t.cfg.Config.t_mem
        else begin
          t.cold_misses <- t.cold_misses + 1;
          t.cfg.Config.t_cold_miss
        end
      in
      st.present <- bit;
      st.owner <- thread;
      cost
    end

let read_i64 t addr = Bytes.get_int64_le t.data addr
let write_i64 t addr v = Bytes.set_int64_le t.data addr v
let read_f64 t addr = Int64.float_of_bits (read_i64 t addr)
let write_f64 t addr v = write_i64 t addr (Int64.bits_of_float v)

let coherence_misses t = t.coherence_misses
let invalidations t = t.invalidations
let cold_misses t = t.cold_misses
