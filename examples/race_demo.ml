(* RegCSan catching seeded concurrency bugs.

   Runs the deliberately buggy {!Workload.Racy} kernel with the analyzer
   attached and prints its report: one finding per defect class — a
   write-write data race, a read of an ordinary store no barrier
   published, mixed region/ordinary stores to one word, and a
   use-after-free.

     dune exec examples/race_demo.exe *)

let () =
  let sys = Workload.Racy.run () in
  match Samhita.System.sanitizer sys with
  | None -> assert false (* Racy.run forces Config.sanitize on *)
  | Some s ->
    Format.printf "%a@." Analysis.Regcsan.pp_report s;
    if Analysis.Regcsan.findings_count s = 4 then
      print_endline "all four seeded defects detected OK"
    else print_endline "MISMATCH: expected exactly 4 findings"
